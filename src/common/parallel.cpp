#include "common/parallel.h"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <stdexcept>
#include <vector>

#include "common/assert.h"
#include "common/cli_args.h"
#include "common/sync.h"

namespace ebv {
namespace {

/// Set while a thread executes pool work; nested pool calls from such a
/// thread run inline to avoid deadlock (the pool has one job at a time).
thread_local bool t_inside_pool_body = false;

/// Guards the explicit size request for the lazily created global pool
/// and the created flag (after which requests can no longer apply).
/// Previously two independent atomics, which left set_global_threads
/// with a check-then-act race against a concurrent first global() use:
/// the request could be stored after the creating thread had already
/// sampled it yet before `created` was visible, reporting `true` for a
/// request that never applied.
Mutex g_pool_mutex;
unsigned g_requested_global_threads EBV_GUARDED_BY(g_pool_mutex) = 0;
bool g_global_pool_created EBV_GUARDED_BY(g_pool_mutex) = false;

}  // namespace

unsigned hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

/// One fork-join job. Chunks are claimed by fetch_add on `next`; the
/// executor that retires the last chunk signals completion. `live` counts
/// executors still touching the job so the owner's stack frame outlives
/// every reader.
struct ThreadPool::Job {
  std::function<void(std::size_t, std::size_t)> body;
  std::size_t n = 0;
  std::size_t grain = 1;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> chunks_left{0};
  std::atomic<bool> cancelled{false};
  /// for_range skips remaining chunks after a throw; run_team must not
  /// (unstarted ranks would strand barrier peers), so it clears this.
  bool skip_on_cancel = true;
  FirstError error;
};

struct ThreadPool::Impl {
  Mutex mutex;
  CondVar work_cv;
  CondVar done_cv;
  Job* job EBV_GUARDED_BY(mutex) = nullptr;  // owned by the caller's stack
  std::uint64_t generation EBV_GUARDED_BY(mutex) = 0;
  unsigned live EBV_GUARDED_BY(mutex) = 0;  // workers referencing `job`
  bool stop EBV_GUARDED_BY(mutex) = false;
  /// Serialises concurrent external submitters: the caller holds it for a
  /// whole job (publish, execute, drain), so at most one job is ever in
  /// flight and every pool worker is idle whenever it is free.
  Mutex submit_mutex EBV_ACQUIRED_BEFORE(mutex);
  std::vector<std::thread> workers;
};

ThreadPool::ThreadPool(unsigned num_threads) : impl_(new Impl) {
  if (num_threads == 0) num_threads = hardware_threads();
  num_workers_ = num_threads - 1;
  impl_->workers.reserve(num_workers_);
  for (std::size_t i = 0; i < num_workers_; ++i) {
    impl_->workers.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& t : impl_->workers) t.join();
  delete impl_;
}

void ThreadPool::execute(Job& job) {
  t_inside_pool_body = true;
  for (;;) {
    const std::size_t begin = job.next.fetch_add(job.grain);
    if (begin >= job.n) break;
    const std::size_t end = std::min(begin + job.grain, job.n);
    if (!job.skip_on_cancel ||
        !job.cancelled.load(std::memory_order_relaxed)) {
      try {
        job.body(begin, end);
      } catch (...) {
        job.cancelled.store(true, std::memory_order_relaxed);
        job.error.capture();
      }
    }
    if (job.chunks_left.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      MutexLock lock(impl_->mutex);
      impl_->done_cv.notify_all();
    }
  }
  t_inside_pool_body = false;
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    Job* job = nullptr;
    {
      MutexLock lock(impl_->mutex);
      while (!impl_->stop && impl_->generation == seen_generation) {
        impl_->work_cv.wait(impl_->mutex);
      }
      if (impl_->stop) return;
      seen_generation = impl_->generation;
      job = impl_->job;
      if (job == nullptr) continue;
      ++impl_->live;
    }
    execute(*job);
    {
      MutexLock lock(impl_->mutex);
      --impl_->live;
    }
    impl_->done_cv.notify_all();
  }
}

/// Publish `job` to the workers, participate, and drain: returns once
/// every chunk retired and no worker still references the job's frame.
/// Shared tail of for_range and pool-carried run_team.
void ThreadPool::run_job(Job& job) {
  MutexLock submit_lock(impl_->submit_mutex);
  {
    MutexLock lock(impl_->mutex);
    impl_->job = &job;
    ++impl_->generation;
  }
  impl_->work_cv.notify_all();

  execute(job);

  MutexLock lock(impl_->mutex);
  while (job.chunks_left.load(std::memory_order_acquire) != 0 ||
         impl_->live != 0) {
    impl_->done_cv.wait(impl_->mutex);
  }
  impl_->job = nullptr;
}

void ThreadPool::for_range(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t grain) {
  if (n == 0) return;
  if (grain == 0) {
    // std::size_t{4} keeps the multiply in the wide type: 4 * unsigned
    // would compute in 32 bits and only then widen for the division
    // (bugprone-implicit-widening-of-multiplication-result).
    grain = std::max<std::size_t>(1, n / (std::size_t{4} * num_threads()));
  }
  if (num_workers_ == 0 || t_inside_pool_body || n <= grain) {
    body(0, n);
    return;
  }

  Job job;
  job.body = body;
  job.n = n;
  job.grain = grain;
  job.chunks_left.store((n + grain - 1) / grain, std::memory_order_relaxed);
  run_job(job);
  job.error.rethrow_if_set();
}

void ThreadPool::run_team(
    unsigned team_size, const std::function<void(unsigned, unsigned)>& body) {
  const unsigned team = std::max(team_size, 1u);
  if (team == 1 || t_inside_pool_body) {
    const bool was_inside = t_inside_pool_body;
    t_inside_pool_body = true;
    try {
      body(0, 1);
    } catch (...) {
      t_inside_pool_body = was_inside;
      throw;
    }
    t_inside_pool_body = was_inside;
    return;
  }
  // Teams larger than the pool cannot all be carried by pool workers (an
  // executor keeps its rank until the body returns), so oversubscribed
  // teams run every non-caller rank on a dedicated temporary thread (the
  // resident workers sit this one out — simpler than mixing executor
  // kinds, and run_team callers invoke it once per long-running
  // operation, not per item, so the spawn cost is noise).
  if (team > num_threads()) {
    FirstError error;
    std::vector<std::thread> extra;
    extra.reserve(team - 1);
    for (unsigned rank = 1; rank < team; ++rank) {
      extra.emplace_back([&, rank] {
        t_inside_pool_body = true;
        try {
          body(rank, team);
        } catch (...) {
          error.capture();
        }
        t_inside_pool_body = false;
      });
    }
    t_inside_pool_body = true;
    try {
      body(0, team);
    } catch (...) {
      error.capture();
    }
    t_inside_pool_body = false;
    for (std::thread& t : extra) t.join();
    error.rethrow_if_set();
    return;
  }

  // Each rank is one chunk; with the submit lock held every pool thread is
  // idle, so all `team` ranks run concurrently (an executor that claims a
  // rank keeps it until the body returns, and team <= num_threads()).
  Job job;
  job.body = [&body, team](std::size_t begin, std::size_t) {
    body(static_cast<unsigned>(begin), team);
  };
  job.n = team;
  job.grain = 1;
  job.skip_on_cancel = false;
  job.chunks_left.store(team, std::memory_order_relaxed);
  run_job(job);
  job.error.rethrow_if_set();
}

bool ThreadPool::inside_pool_body() { return t_inside_pool_body; }

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    MutexLock lock(g_pool_mutex);
    g_global_pool_created = true;
    if (g_requested_global_threads > 0) return g_requested_global_threads;
    if (const char* env = std::getenv("EBV_THREADS")) {
      // Full-string validation via the shared parser: "8x" used to
      // strtol-truncate to 8 threads; now malformed values are ignored
      // (fall through to the hardware default) instead of half-parsed.
      try {
        const auto parsed = cli::parse_uint(
            "EBV_THREADS", env, std::numeric_limits<unsigned>::max());
        if (parsed > 0) return static_cast<unsigned>(parsed);
      } catch (const std::invalid_argument&) {
      }
    }
    return hardware_threads();
  }());
  return pool;
}

bool ThreadPool::set_global_threads(unsigned num_threads) {
  if (num_threads == 0) return false;
  bool created;
  {
    MutexLock lock(g_pool_mutex);
    created = g_global_pool_created;
    if (!created) {
      g_requested_global_threads = num_threads;
      return true;
    }
  }
  // Created: the initializer already ran (it sets the flag under
  // g_pool_mutex), so global() here can only block briefly on the magic
  // static's guard, never on g_pool_mutex — no lock-order cycle.
  return global().num_threads() == num_threads;
}

bool request_global_threads(unsigned num_threads) {
  return request_global_threads(num_threads, std::cerr);
}

bool request_global_threads(unsigned num_threads, std::ostream& warn) {
  if (ThreadPool::set_global_threads(num_threads)) return true;
  if (num_threads == 0) {
    warn << "warning: --threads 0 is not a valid pool size; keeping "
         << ThreadPool::global().num_threads() << " thread(s)\n";
  } else {
    warn << "warning: thread pool already running with "
         << ThreadPool::global().num_threads() << " thread(s); --threads "
         << num_threads << " ignored\n";
  }
  return false;
}

}  // namespace ebv
