// Small formatting helpers for the reporting layer (tables, benches).
#pragma once

#include <cstdint>
#include <string>

namespace ebv {

/// "1234567" -> "1,234,567".
std::string with_commas(std::uint64_t value);

/// Fixed-point with `digits` decimals, e.g. format_fixed(1.2345, 2) == "1.23".
std::string format_fixed(double value, int digits);

/// Scientific-style "4.05e+07" as used in the paper's Table IV.
std::string format_sci(double value, int digits = 2);

/// Human-readable duration from seconds: "12.3 ms", "4.56 s".
std::string format_duration(double seconds);

}  // namespace ebv
