// Capability-annotated synchronisation primitives: the only mutex and
// condition-variable types the rest of the tree is allowed to use
// (scripts/ebvlint.py, rule `unannotated-mutex`, enforces this).
//
// std::mutex itself is not a Clang thread-safety capability, so members
// guarded by one can never be machine-checked. ebv::Mutex wraps it with
// the EBV_CAPABILITY attribute, ebv::MutexLock is the annotated RAII
// guard (std::unique_lock-shaped: mid-scope unlock()/lock() supported),
// and ebv::CondVar is a condition variable that waits directly on the
// Mutex (std::condition_variable_any — no unique_lock detour), with
// every wait annotated EBV_REQUIRES so a wait outside the lock is a
// compile error under -Wthread-safety.
//
// Two deliberate conventions, both load-bearing for the analysis:
//  * condition-wait predicates are written as explicit `while` loops in
//    the CALLER (where the analysis can see the lock is held), never as
//    predicate lambdas — a lambda body is a separate function to the
//    analysis and reads of guarded state inside one would be flagged.
//  * CondVar::wait's internal unlock/relock of the Mutex happens inside
//    libstdc++'s condition_variable_any, whose diagnostics are
//    system-header-suppressed; the EBV_REQUIRES contract on wait() is
//    what callers are checked against (the analysis's documented model
//    for condition variables: the lock is treated as held across the
//    wait).
#pragma once

#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>

#include "common/thread_annotations.h"

namespace ebv {

class EBV_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() EBV_ACQUIRE() { mu_.lock(); }
  void unlock() EBV_RELEASE() { mu_.unlock(); }
  bool try_lock() EBV_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII guard over an ebv::Mutex. Constructed holding the lock;
/// unlock()/lock() allow the std::unique_lock-style mid-scope window
/// (the destructor releases only if still held).
class EBV_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) EBV_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock();
  }
  ~MutexLock() EBV_RELEASE() {
    if (held_) mu_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock() EBV_RELEASE() {
    mu_.unlock();
    held_ = false;
  }
  void lock() EBV_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_;
};

/// Condition variable waiting directly on an ebv::Mutex. Waits require
/// the mutex (checked); notify_* never do.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Atomically release `mu`, sleep, and reacquire before returning.
  /// Spurious wakeups happen: always wait in a predicate `while` loop.
  void wait(Mutex& mu) EBV_REQUIRES(mu) { wait_impl(mu); }

  /// wait() with a deadline; std::cv_status::timeout once it passes.
  template <typename Clock, typename Duration>
  std::cv_status wait_until(Mutex& mu,
                            const std::chrono::time_point<Clock, Duration>&
                                deadline) EBV_REQUIRES(mu) {
    return wait_until_impl(mu, deadline);
  }

 private:
  // The condition variable's internal unlock/relock of `mu` is invisible
  // to the analysis (it models the lock as held across a wait), so the
  // bodies opt out; the EBV_REQUIRES contracts above are what callers
  // are checked against.
  void wait_impl(Mutex& mu) EBV_NO_THREAD_SAFETY_ANALYSIS { cv_.wait(mu); }

  template <typename Clock, typename Duration>
  std::cv_status wait_until_impl(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      EBV_NO_THREAD_SAFETY_ANALYSIS {
    return cv_.wait_until(mu, deadline);
  }

  std::condition_variable_any cv_;
};

/// First-exception capture slot for fork-join fan-outs (ThreadPool jobs,
/// TaskGraph teams, oversubscribed run_team ranks): every worker calls
/// capture() from its catch(...) handler, the join point calls
/// rethrow_if_set(). Internally locked, so call sites need no
/// annotations of their own.
class FirstError {
 public:
  /// Record std::current_exception() if no earlier error was recorded.
  void capture() EBV_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (!error_) error_ = std::current_exception();
  }

  [[nodiscard]] bool set() const EBV_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return error_ != nullptr;
  }

  /// Rethrow the recorded exception, if any (outside the lock).
  void rethrow_if_set() EBV_EXCLUDES(mu_) {
    std::exception_ptr error;
    {
      MutexLock lock(mu_);
      error = error_;
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  mutable Mutex mu_;
  std::exception_ptr error_ EBV_GUARDED_BY(mu_);
};

}  // namespace ebv
