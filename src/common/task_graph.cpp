#include "common/task_graph.h"

#include <atomic>
#include <deque>
#include <memory>
#include <stdexcept>

#include "common/assert.h"
#include "common/parallel.h"
#include "common/sync.h"
#include "obs/trace.h"

namespace ebv {
namespace {

/// One work-stealing deque. File-scope (not a local struct) with
/// internally-locking accessors so every dq access is machine-checked
/// against mu — EBV_GUARDED_BY works on members, not locals, and the
/// method form keeps the analysis from having to reason about which
/// ranks[i].mu an open-coded lock_guard matched.
struct StealRank {
  Mutex mu;
  std::deque<TaskGraph::TaskId> dq EBV_GUARDED_BY(mu);

  void push(TaskGraph::TaskId t) EBV_EXCLUDES(mu) {
    MutexLock lock(mu);
    dq.push_back(t);
  }

  /// Owner end: newest first (LIFO) — dependents just pushed are the
  /// hottest work. kNone when empty.
  TaskGraph::TaskId pop_newest() EBV_EXCLUDES(mu) {
    MutexLock lock(mu);
    if (dq.empty()) return TaskGraph::kNone;
    const TaskGraph::TaskId t = dq.back();
    dq.pop_back();
    return t;
  }

  /// Thief end: the victim's oldest entry — the end the owner isn't on.
  /// kNone when empty.
  TaskGraph::TaskId steal_oldest() EBV_EXCLUDES(mu) {
    MutexLock lock(mu);
    if (dq.empty()) return TaskGraph::kNone;
    const TaskGraph::TaskId t = dq.front();
    dq.pop_front();
    return t;
  }
};

}  // namespace

TaskGraph::TaskId TaskGraph::add(std::function<void()> fn) {
  EBV_REQUIRE(!ran_, "TaskGraph is single-shot: add after run");
  EBV_REQUIRE(tasks_.size() < kNone, "too many tasks");
  tasks_.push_back(Task{std::move(fn), {}, 0});
  return static_cast<TaskId>(tasks_.size() - 1);
}

TaskGraph::TaskId TaskGraph::add(std::function<void()> fn,
                                 std::initializer_list<TaskId> deps) {
  const TaskId id = add(std::move(fn));
  for (const TaskId on : deps) depend(id, on);
  return id;
}

void TaskGraph::depend(TaskId task, TaskId on) {
  if (on == kNone) return;
  EBV_REQUIRE(task < tasks_.size() && on < tasks_.size(),
              "TaskGraph::depend: unknown task id");
  EBV_REQUIRE(task != on, "TaskGraph::depend: self-dependency");
  tasks_[on].dependents.push_back(task);
  ++tasks_[task].num_deps;
}

void TaskGraph::run(unsigned team_size) {
  EBV_REQUIRE(!ran_, "TaskGraph is single-shot: run called twice");
  ran_ = true;
  const std::size_t n = tasks_.size();
  if (n == 0) return;

  // Kahn pre-pass: cycle detection for every mode, and the execution
  // order for the serial one. FIFO over ready ids — deterministic.
  std::vector<TaskId> order;
  {
    order.reserve(n);
    std::vector<std::uint32_t> pending(n);
    for (std::size_t t = 0; t < n; ++t) {
      pending[t] = tasks_[t].num_deps;
      if (pending[t] == 0) order.push_back(static_cast<TaskId>(t));
    }
    for (std::size_t head = 0; head < order.size(); ++head) {
      for (const TaskId d : tasks_[order[head]].dependents) {
        if (--pending[d] == 0) order.push_back(d);
      }
    }
    if (order.size() != n) {
      throw std::logic_error("TaskGraph: dependency cycle");
    }
  }

  const unsigned team = team_size > 0 ? team_size : 1;
  if (team == 1 || ThreadPool::inside_pool_body()) {
    std::exception_ptr error;
    for (const TaskId t : order) {
      if (error) continue;  // skip bodies after a failure, like parallel mode
      try {
        tasks_[t].fn();
      } catch (...) {
        error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }

  // --- Work-stealing execution -----------------------------------------
  const std::unique_ptr<StealRank[]> ranks(new StealRank[team]);
  std::vector<std::atomic<std::uint32_t>> pending(n);
  for (std::size_t t = 0; t < n; ++t) {
    pending[t].store(tasks_[t].num_deps, std::memory_order_relaxed);
  }
  // Seed the initially-ready tasks round-robin so every rank starts warm.
  {
    unsigned r = 0;
    for (std::size_t t = 0; t < n; ++t) {
      if (tasks_[t].num_deps == 0) {
        ranks[r % team].push(static_cast<TaskId>(t));
        ++r;
      }
    }
  }

  std::atomic<std::size_t> remaining{n};
  std::atomic<bool> failed{false};
  FirstError error;

  // Idle-rank parking. A rank whose steal round finds every deque empty
  // sleeps on park_cv instead of spinning (long serial chains — the
  // strict BSP route/broadcast chains — would otherwise burn team-1
  // cores on yield loops). work_epoch ticks whenever newly-ready work
  // is pushed; a parked rank re-scans once it moves past the value it
  // sampled BEFORE its failed scan, or once the graph drained. All four
  // cross-checks (producer: tick epoch then read parked; idle rank:
  // raise parked then read epoch) are seq_cst so the two sides cannot
  // both take their skip path, and the producer's empty lock/unlock of
  // park_mu before notifying pairs with the predicate evaluated under
  // park_mu — the sleeper either sees the new epoch pre-block or is
  // fully blocked and receives the notify. No lost wakeups.
  std::atomic<std::uint64_t> work_epoch{0};
  std::atomic<unsigned> parked{0};
  // ebvlint: allow(unannotated-mutex): park_mu guards no data — it only
  // orders the wakeup handshake above; the predicate state (work_epoch,
  // remaining) is atomics.
  Mutex park_mu;
  CondVar park_cv;
  auto announce_work = [&] {
    work_epoch.fetch_add(1);
    if (parked.load() == 0) return;
    { MutexLock lock(park_mu); }
    park_cv.notify_all();
  };

  ThreadPool::global().run_team(team, [&](unsigned rank, unsigned t_size) {
    // Give every rank its own trace track (tid rank+1; 0 is the caller)
    // so spans emitted from task bodies nest per rank in the timeline.
    const obs::trace::ThreadTrackGuard track(rank + 1);
    while (remaining.load(std::memory_order_acquire) > 0) {
      const std::uint64_t epoch = work_epoch.load();
      TaskId task = ranks[rank].pop_newest();
      for (unsigned off = 1; task == kNone && off < t_size; ++off) {
        task = ranks[(rank + off) % t_size].steal_oldest();
        if (task != kNone && obs::trace::enabled()) {
          obs::trace::instant("steal", (rank + off) % t_size);
        }
      }
      if (task == kNone) {
        if (obs::trace::enabled()) obs::trace::instant("park");
        parked.fetch_add(1);
        {
          MutexLock lock(park_mu);
          while (work_epoch.load(std::memory_order_relaxed) == epoch &&
                 remaining.load(std::memory_order_acquire) != 0) {
            park_cv.wait(park_mu);
          }
        }
        parked.fetch_sub(1);
        if (obs::trace::enabled()) obs::trace::instant("unpark");
        continue;
      }
      if (!failed.load(std::memory_order_relaxed)) {
        try {
          tasks_[task].fn();
        } catch (...) {
          failed.store(true, std::memory_order_relaxed);
          error.capture();
        }
      }
      // Release dependents. acq_rel on the counter publishes everything
      // this task wrote to whoever runs the dependent.
      bool pushed = false;
      for (const TaskId d : tasks_[task].dependents) {
        if (pending[d].fetch_sub(1, std::memory_order_acq_rel) == 1) {
          ranks[rank].push(d);
          pushed = true;
        }
      }
      if (pushed) announce_work();
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Graph drained: wake every parked rank so the team can retire.
        { MutexLock lock(park_mu); }
        park_cv.notify_all();
      }
    }
  });

  error.rethrow_if_set();
}

}  // namespace ebv
