#include "common/task_graph.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "common/assert.h"
#include "common/parallel.h"

namespace ebv {

TaskGraph::TaskId TaskGraph::add(std::function<void()> fn) {
  EBV_REQUIRE(!ran_, "TaskGraph is single-shot: add after run");
  EBV_REQUIRE(tasks_.size() < kNone, "too many tasks");
  tasks_.push_back(Task{std::move(fn), {}, 0});
  return static_cast<TaskId>(tasks_.size() - 1);
}

TaskGraph::TaskId TaskGraph::add(std::function<void()> fn,
                                 std::initializer_list<TaskId> deps) {
  const TaskId id = add(std::move(fn));
  for (const TaskId on : deps) depend(id, on);
  return id;
}

void TaskGraph::depend(TaskId task, TaskId on) {
  if (on == kNone) return;
  EBV_REQUIRE(task < tasks_.size() && on < tasks_.size(),
              "TaskGraph::depend: unknown task id");
  EBV_REQUIRE(task != on, "TaskGraph::depend: self-dependency");
  tasks_[on].dependents.push_back(task);
  ++tasks_[task].num_deps;
}

void TaskGraph::run(unsigned team_size) {
  EBV_REQUIRE(!ran_, "TaskGraph is single-shot: run called twice");
  ran_ = true;
  const std::size_t n = tasks_.size();
  if (n == 0) return;

  // Kahn pre-pass: cycle detection for every mode, and the execution
  // order for the serial one. FIFO over ready ids — deterministic.
  std::vector<TaskId> order;
  {
    order.reserve(n);
    std::vector<std::uint32_t> pending(n);
    for (std::size_t t = 0; t < n; ++t) {
      pending[t] = tasks_[t].num_deps;
      if (pending[t] == 0) order.push_back(static_cast<TaskId>(t));
    }
    for (std::size_t head = 0; head < order.size(); ++head) {
      for (const TaskId d : tasks_[order[head]].dependents) {
        if (--pending[d] == 0) order.push_back(d);
      }
    }
    if (order.size() != n) {
      throw std::logic_error("TaskGraph: dependency cycle");
    }
  }

  const unsigned team = team_size > 0 ? team_size : 1;
  if (team == 1 || ThreadPool::inside_pool_body()) {
    std::exception_ptr error;
    for (const TaskId t : order) {
      if (error) continue;  // skip bodies after a failure, like parallel mode
      try {
        tasks_[t].fn();
      } catch (...) {
        error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }

  // --- Work-stealing execution -----------------------------------------
  struct Rank {
    std::mutex mu;
    std::deque<TaskId> dq;
  };
  const std::unique_ptr<Rank[]> ranks(new Rank[team]);
  std::vector<std::atomic<std::uint32_t>> pending(n);
  for (std::size_t t = 0; t < n; ++t) {
    pending[t].store(tasks_[t].num_deps, std::memory_order_relaxed);
  }
  // Seed the initially-ready tasks round-robin so every rank starts warm.
  {
    unsigned r = 0;
    for (std::size_t t = 0; t < n; ++t) {
      if (tasks_[t].num_deps == 0) {
        ranks[r % team].dq.push_back(static_cast<TaskId>(t));
        ++r;
      }
    }
  }

  std::atomic<std::size_t> remaining{n};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mu;

  // Idle-rank parking. A rank whose steal round finds every deque empty
  // sleeps on park_cv instead of spinning (long serial chains — the
  // strict BSP route/broadcast chains — would otherwise burn team-1
  // cores on yield loops). work_epoch ticks whenever newly-ready work
  // is pushed; a parked rank re-scans once it moves past the value it
  // sampled BEFORE its failed scan, or once the graph drained. All four
  // cross-checks (producer: tick epoch then read parked; idle rank:
  // raise parked then read epoch) are seq_cst so the two sides cannot
  // both take their skip path, and the producer's empty lock/unlock of
  // park_mu before notifying pairs with the predicate evaluated under
  // park_mu — the sleeper either sees the new epoch pre-block or is
  // fully blocked and receives the notify. No lost wakeups.
  std::atomic<std::uint64_t> work_epoch{0};
  std::atomic<unsigned> parked{0};
  std::mutex park_mu;
  std::condition_variable park_cv;
  auto announce_work = [&] {
    work_epoch.fetch_add(1);
    if (parked.load() == 0) return;
    { std::lock_guard lock(park_mu); }
    park_cv.notify_all();
  };

  ThreadPool::global().run_team(team, [&](unsigned rank, unsigned t_size) {
    while (remaining.load(std::memory_order_acquire) > 0) {
      const std::uint64_t epoch = work_epoch.load();
      TaskId task = kNone;
      {
        // Own deque: newest first (LIFO) — dependents just pushed are
        // the hottest work.
        std::lock_guard lock(ranks[rank].mu);
        if (!ranks[rank].dq.empty()) {
          task = ranks[rank].dq.back();
          ranks[rank].dq.pop_back();
        }
      }
      for (unsigned off = 1; task == kNone && off < t_size; ++off) {
        // Steal the victim's oldest entry — the end the owner isn't on.
        Rank& victim = ranks[(rank + off) % t_size];
        std::lock_guard lock(victim.mu);
        if (!victim.dq.empty()) {
          task = victim.dq.front();
          victim.dq.pop_front();
        }
      }
      if (task == kNone) {
        parked.fetch_add(1);
        {
          std::unique_lock lock(park_mu);
          park_cv.wait(lock, [&] {
            return work_epoch.load(std::memory_order_relaxed) != epoch ||
                   remaining.load(std::memory_order_acquire) == 0;
          });
        }
        parked.fetch_sub(1);
        continue;
      }
      if (!failed.load(std::memory_order_relaxed)) {
        try {
          tasks_[task].fn();
        } catch (...) {
          failed.store(true, std::memory_order_relaxed);
          std::lock_guard lock(error_mu);
          if (!error) error = std::current_exception();
        }
      }
      // Release dependents. acq_rel on the counter publishes everything
      // this task wrote to whoever runs the dependent.
      bool pushed = false;
      for (const TaskId d : tasks_[task].dependents) {
        if (pending[d].fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard lock(ranks[rank].mu);
          ranks[rank].dq.push_back(d);
          pushed = true;
        }
      }
      if (pushed) announce_work();
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Graph drained: wake every parked rank so the team can retire.
        { std::lock_guard lock(park_mu); }
        park_cv.notify_all();
      }
    }
  });

  if (error) std::rethrow_exception(error);
}

}  // namespace ebv
