#include "common/stale_sweep.h"

#include <cctype>
#include <cstdlib>
#include <filesystem>

#ifndef _WIN32
#include <cerrno>
#include <signal.h>
#endif

namespace ebv {

namespace {

namespace fs = std::filesystem;

/// Parse a process_unique_suffix() token ("<pid>-<n>", both decimal);
/// returns the pid or nullopt.
std::optional<long> parse_suffix_token(const std::string& token) {
  const std::size_t dash = token.find('-');
  if (dash == std::string::npos || dash == 0 || dash + 1 >= token.size()) {
    return std::nullopt;
  }
  for (std::size_t i = 0; i < token.size(); ++i) {
    if (i == dash) continue;
    if (std::isdigit(static_cast<unsigned char>(token[i])) == 0) {
      return std::nullopt;
    }
  }
  // ebvlint: allow(naked-number-parse): every character was validated
  // as a digit above, so partial-consumption truncation cannot happen.
  return std::strtol(token.c_str(), nullptr, 10);
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

std::optional<long> temp_file_owner_pid(const std::string& file_name) {
  // Mailbox overflow: ebv-mbox.<pid>-<n>.<chan>.tmp
  if (file_name.rfind("ebv-mbox.", 0) == 0 && ends_with(file_name, ".tmp")) {
    const std::size_t start = std::string("ebv-mbox.").size();
    const std::size_t end = file_name.find('.', start);
    if (end == std::string::npos) return std::nullopt;
    return parse_suffix_token(file_name.substr(start, end - start));
  }
  // Worker spill snapshot: ebv-workers.<pid>-<n>.ebvw
  if (file_name.rfind("ebv-workers.", 0) == 0 &&
      ends_with(file_name, ".ebvw")) {
    const std::size_t start = std::string("ebv-workers.").size();
    const std::size_t end = file_name.size() - std::string(".ebvw").size();
    if (end <= start) return std::nullopt;
    return parse_suffix_token(file_name.substr(start, end - start));
  }
  // Checkpoint temp: <ckpt>.ebvc.tmp.<pid>-<n>
  const std::size_t ebvc_tmp = file_name.find(".ebvc.tmp.");
  if (ebvc_tmp != std::string::npos) {
    const std::size_t start = ebvc_tmp + std::string(".ebvc.tmp.").size();
    return parse_suffix_token(file_name.substr(start));
  }
  // Serve daemon socket: ebv-serve.<pid>-<n>.sock
  if (file_name.rfind("ebv-serve.", 0) == 0 && ends_with(file_name, ".sock")) {
    const std::size_t start = std::string("ebv-serve.").size();
    const std::size_t end = file_name.size() - std::string(".sock").size();
    if (end <= start) return std::nullopt;
    return parse_suffix_token(file_name.substr(start, end - start));
  }
  // Weight spool: <out>.wspool.<pid>-<n>.tmp
  if (ends_with(file_name, ".tmp") &&
      file_name.find(".wspool.") != std::string::npos) {
    const std::string stem =
        file_name.substr(0, file_name.size() - std::string(".tmp").size());
    const std::size_t dot = stem.rfind('.');
    if (dot == std::string::npos) return std::nullopt;
    return parse_suffix_token(stem.substr(dot + 1));
  }
  // Converter run file: <out>.run<k>.<pid>-<n>.tmp
  if (ends_with(file_name, ".tmp") && file_name.find(".run") != std::string::npos) {
    const std::string stem =
        file_name.substr(0, file_name.size() - std::string(".tmp").size());
    const std::size_t dot = stem.rfind('.');
    if (dot == std::string::npos) return std::nullopt;
    return parse_suffix_token(stem.substr(dot + 1));
  }
  return std::nullopt;
}

bool process_alive(long pid) {
#ifdef _WIN32
  (void)pid;
  return true;
#else
  if (pid <= 0) return true;  // malformed token: do not touch the file
  if (::kill(static_cast<pid_t>(pid), 0) == 0) return true;
  return errno != ESRCH;
#endif
}

std::size_t sweep_stale_temp_files(const std::string& dir) {
  std::size_t removed = 0;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return 0;
  for (const fs::directory_entry& entry : it) {
    std::error_code entry_ec;
    // Daemon sockets (ebv-serve.*.sock) are socket inodes, not regular
    // files — admit both; every other shape only ever matches a file.
    const bool regular = entry.is_regular_file(entry_ec) && !entry_ec;
    std::error_code sock_ec;
    const bool socket = entry.is_socket(sock_ec) && !sock_ec;
    if (!regular && !socket) continue;
    const std::optional<long> pid =
        temp_file_owner_pid(entry.path().filename().string());
    if (!pid.has_value() || process_alive(*pid)) continue;
    if (fs::remove(entry.path(), entry_ec) && !entry_ec) ++removed;
  }
  return removed;
}

}  // namespace ebv
