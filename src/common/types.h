// Core scalar types shared by every subsystem.
#pragma once

#include <cstdint>
#include <limits>

namespace ebv {

/// Dense vertex identifier. Graphs always use ids in [0, num_vertices).
using VertexId = std::uint32_t;

/// Edge index into a graph's edge list.
using EdgeId = std::uint64_t;

/// Subgraph (worker) identifier produced by a partitioner.
using PartitionId = std::uint32_t;

inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();
inline constexpr PartitionId kInvalidPartition =
    std::numeric_limits<PartitionId>::max();

/// A directed edge. Undirected inputs are materialised as two directed
/// edges with opposite directions (paper §III-C).
struct Edge {
  VertexId src = kInvalidVertex;
  VertexId dst = kInvalidVertex;

  friend bool operator==(const Edge&, const Edge&) = default;
};

}  // namespace ebv
