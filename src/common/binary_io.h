// Small shared helpers for the binary format readers/writers (EBVG,
// EBVP). Kept header-only so each format file stays self-contained.
#pragma once

#include <algorithm>
#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace ebv::io::detail {

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T read_pod(std::istream& in, const char* format_name) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in) {
    throw std::runtime_error(std::string(format_name) + ": truncated input");
  }
  return value;
}

/// Read `count` elements, growing the result in ~1 MiB chunks: a header
/// whose count claims more elements than the stream holds fails with
/// runtime_error at EOF after at most one extra chunk of allocation —
/// never an unbounded resize/OOM on a hostile count.
template <typename T>
std::vector<T> read_array(std::istream& in, std::uint64_t count,
                          const char* format_name, const char* what) {
  constexpr std::uint64_t kChunkElems = (std::uint64_t{1} << 20) / sizeof(T);
  std::vector<T> out;
  while (out.size() < count) {
    const std::uint64_t take = std::min(kChunkElems, count - out.size());
    const std::size_t old = out.size();
    out.resize(old + static_cast<std::size_t>(take));
    in.read(reinterpret_cast<char*>(out.data() + old),
            static_cast<std::streamsize>(take * sizeof(T)));
    if (!in) {
      throw std::runtime_error(std::string(format_name) + ": truncated " +
                               what + " (count exceeds the stream?)");
    }
  }
  return out;
}

}  // namespace ebv::io::detail
