#include "common/assert.h"

#include <cstdio>
#include <cstdlib>

namespace ebv::detail {

void require_failed(const char* expr, const char* file, int line,
                    const std::string& message) {
  throw std::invalid_argument(std::string("EBV_REQUIRE failed: ") + message +
                              " [" + expr + " at " + file + ":" +
                              std::to_string(line) + "]");
}

void assert_failed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "EBV_ASSERT failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace ebv::detail
