// Deterministic random-number utilities. Every stochastic component in the
// library takes an explicit 64-bit seed so experiments are reproducible.
#pragma once

#include <cstdint>
#include <random>

namespace ebv {

/// Project-wide PRNG engine.
using Rng = std::mt19937_64;

/// Derive an independent child seed from (seed, stream). Used when a
/// component needs several decorrelated streams from one user seed.
std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream);

/// SplitMix64 — stateless 64-bit mixer; also the hash used by the
/// hash-family partitioners (DBH, CVC, random) so partition placement does
/// not depend on std::hash implementation details.
std::uint64_t mix64(std::uint64_t x);

/// Uniform integer in [0, bound) without modulo bias (Lemire's method).
std::uint64_t bounded(Rng& rng, std::uint64_t bound);

}  // namespace ebv
