// Precondition and invariant checking.
//
// EBV_REQUIRE  — public API preconditions; throws std::invalid_argument so
//                callers can recover (always on).
// EBV_ASSERT   — internal invariants; aborts with a diagnostic (always on;
//                the checks in this codebase are O(1) and off hot paths).
#pragma once

#include <stdexcept>
#include <string>

namespace ebv::detail {

[[noreturn]] void require_failed(const char* expr, const char* file, int line,
                                 const std::string& message);
[[noreturn]] void assert_failed(const char* expr, const char* file, int line);

}  // namespace ebv::detail

#define EBV_REQUIRE(expr, message)                                       \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::ebv::detail::require_failed(#expr, __FILE__, __LINE__, (message)); \
    }                                                                    \
  } while (false)

#define EBV_ASSERT(expr)                                            \
  do {                                                              \
    if (!(expr)) {                                                  \
      ::ebv::detail::assert_failed(#expr, __FILE__, __LINE__);      \
    }                                                               \
  } while (false)
