// Startup reclamation of temp files orphaned by killed processes.
//
// Every transient file the system creates embeds the owner's
// process_unique_suffix() ("<pid>-<n>"), so any other process can tell
// whether the creator is still alive. A crashed or kill -9'd run leaves
// its mailbox overflow files, EBVW worker snapshots, converter run files
// and checkpoint temps behind; the run/convert entry points call
// sweep_stale_temp_files() on their scratch directories before starting,
// deleting exactly the recognised temp shapes whose owner pid is dead.
#pragma once

#include <optional>
#include <string>

namespace ebv {

/// If `file_name` (no directory) matches one of the temp-file shapes the
/// system creates — `ebv-mbox.<pid>-<n>.<chan>.tmp`,
/// `ebv-workers.<pid>-<n>.ebvw`, `<out>.run<k>.<pid>-<n>.tmp`,
/// `<ckpt>.ebvc.tmp.<pid>-<n>`, `ebv-serve.<pid>-<n>.sock` — return the
/// owning pid; otherwise nullopt. Exposed for tests.
[[nodiscard]] std::optional<long> temp_file_owner_pid(
    const std::string& file_name);

/// True when `pid` is a live process (or one we cannot signal, which we
/// conservatively treat as live). On platforms without kill(2) every pid
/// is treated as live, making the sweep a no-op.
[[nodiscard]] bool process_alive(long pid);

/// Remove recognised temp files in `dir` (non-recursive) whose owner is
/// dead. Best-effort: unreadable directories or losing a removal race is
/// not an error. Returns the number of files removed.
std::size_t sweep_stale_temp_files(const std::string& dir);

}  // namespace ebv
