// Deterministic, seed-driven fault injection for the I/O and runtime
// layers ("failpoints"). A failpoint is a named site in production code
// that asks the registry what should happen at this hit; with no spec
// configured the query is one relaxed atomic load, so shipping the sites
// compiled-in costs nothing.
//
// Spec grammar (EBV_FAILPOINTS env var or `ebvpart … --failpoints`):
//   comma-separated clauses, each one of
//     <site>=<action>          fail at every hit of the site
//     <site>=<action>@N        fail at hit N only (hits are 1-based,
//                              counted per site since configure())
//     <site>=<action>@N-M      fail at hits N..M inclusive (transient
//                              failure window: retries past M succeed)
//     <site>=<action>~P        fail each hit with probability P, decided
//                              by a hash of (seed, site, hit index) — the
//                              same seed always fails the same hits
//     seed=S                   seed for the ~P clauses (default 1)
//   actions: shortread | err | enospc | mmapfail | abort
//
// Sites compiled into the tree (grep for failpoint::hit / maybe_fail_stream):
//   section_io.write   every write_raw() section append (EBVS/EBVW/EBVC)
//   section_io.mmap    MappedFile construction
//   snapshot.write     EBVS SnapshotWriter::finish
//   spill_store.write  EBVW SpillStoreWriter worker/table writes
//   mailbox.append     mailbox overflow-file append
//   mailbox.read       mailbox overflow-file drain (shortread)
//   checkpoint.write   EBVC checkpoint serialisation (retried)
//   checkpoint.rename  the atomic publish rename (retried)
//   checkpoint.read    checkpoint load (shortread → torn-file fallback)
//   bsp.superstep      the task-graph superstep boundary (abort = crash)
//
// Injection exercises the REAL error paths: stream sites are poisoned
// (badbit) so the caller's own `if (!out) fail(...)` check fires; only
// sites with no stream to poison (mmap, abort) throw InjectedFault.
#pragma once

#include <chrono>
#include <cstdint>
#include <ios>
#include <stdexcept>
#include <string>
#include <thread>

namespace ebv::failpoint {

enum class Action {
  kNone,
  kShortRead,
  kWriteError,
  kEnospc,
  kMmapFail,
  kAbort,
};

[[nodiscard]] const char* action_name(Action action);

/// Install a failpoint spec (replaces any previous one and resets all hit
/// counters). Throws std::invalid_argument naming the offending clause.
void configure(const std::string& spec);

/// configure() from the EBV_FAILPOINTS environment variable, if set.
void configure_from_env();

/// Remove every failpoint and reset hit counters.
void clear();

/// True when any failpoint is configured (lock-free).
[[nodiscard]] bool active();

/// Count a hit of `site` and return the action to inject at it (kNone =
/// proceed normally). The fast path when nothing is configured is a
/// single relaxed atomic load.
Action hit(const char* site);

/// Stream-site helper: a kWriteError/kEnospc/kShortRead hit poisons
/// `stream` (badbit) so the call site's existing error check fires its
/// production failure path. Returns the injected action (kNone when the
/// I/O may proceed).
Action maybe_fail_stream(const char* site, std::basic_ios<char>& stream);

/// Fault thrown by sites with no stream to poison (mmap, superstep
/// abort). Derives from std::runtime_error so callers' existing
/// error-path contracts hold unchanged.
class InjectedFault : public std::runtime_error {
 public:
  InjectedFault(std::string site, Action action, const std::string& what);
  [[nodiscard]] const std::string& site() const { return site_; }
  [[nodiscard]] Action action() const { return action_; }

 private:
  std::string site_;
  Action action_;
};

/// RAII spec installation for tests: configure on entry, clear on exit.
class ScopedFailpoints {
 public:
  explicit ScopedFailpoints(const std::string& spec) { configure(spec); }
  ~ScopedFailpoints() { clear(); }
  ScopedFailpoints(const ScopedFailpoints&) = delete;
  ScopedFailpoints& operator=(const ScopedFailpoints&) = delete;
};

/// Bounded retry with exponential backoff for transient I/O (the
/// checkpoint writer's policy; docs/ARCHITECTURE.md "Fault tolerance").
struct RetryPolicy {
  int max_attempts = 3;
  std::chrono::milliseconds base_backoff{1};  // doubled per retry
};

/// Run `op` up to policy.max_attempts times. After each failed attempt
/// `cleanup` runs (remove partial state), then the thread backs off
/// base_backoff·2^(attempt-1); the final failure propagates unchanged.
template <typename Op, typename Cleanup>
decltype(auto) with_retry(const RetryPolicy& policy, Op&& op,
                          Cleanup&& cleanup) {
  for (int attempt = 1;; ++attempt) {
    try {
      return op();
    } catch (...) {
      cleanup();
      if (attempt >= policy.max_attempts) throw;
      std::this_thread::sleep_for(policy.base_backoff * (1 << (attempt - 1)));
    }
  }
}

}  // namespace ebv::failpoint
