// Static task-graph execution with work stealing, plus the bounded
// channel used for producer→consumer backpressure.
//
// TaskGraph is a single-shot DAG of std::function tasks with explicit
// dependencies. run(team) executes it on ThreadPool::run_team ranks:
// each rank owns a deque of ready tasks — the owner pushes and pops at
// the back (LIFO, cache-warm), idle ranks steal from the front (the
// oldest entry, GMP/csp run-queue style), and a task that completes
// pushes its newly-ready dependents onto the completing rank's deque.
// A rank whose steal round finds every deque empty parks on a
// condition variable until new work is pushed or the graph drains —
// idle ranks burn no CPU while another rank works a serial chain.
// Dependency release uses an acq_rel counter, so everything a task wrote
// happens-before every dependent — per-task-private data needs no other
// synchronisation (this is what lets the BSP runtime keep plain,
// non-atomic per-worker counters under a parallel schedule).
//
// run(1) — and run() from inside a pool body, where nested parallelism
// would degrade anyway — executes the tasks serially in deterministic
// Kahn order (ready tasks in FIFO id order). A cycle is detected up
// front and reported as std::logic_error before any task runs. If a
// task throws, remaining task bodies are skipped (dependency release
// still drains the graph) and the first exception is rethrown.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <optional>
#include <vector>

#include "common/sync.h"
#include "common/thread_annotations.h"

namespace ebv {

class TaskGraph {
 public:
  using TaskId = std::uint32_t;
  /// Sentinel accepted (and ignored) wherever a dependency is expected —
  /// lets callers write optional dependencies inline:
  ///   g.add(fn, {i > 0 ? prev : TaskGraph::kNone});
  static constexpr TaskId kNone = 0xFFFFFFFFu;

  /// Register a task. Returned ids are dense and ascending.
  TaskId add(std::function<void()> fn);
  TaskId add(std::function<void()> fn, std::initializer_list<TaskId> deps);

  /// `task` will not start until `on` completed. `on == kNone` is a
  /// no-op. Adding the same edge twice is allowed (counted twice,
  /// released twice — harmless but wasteful).
  void depend(TaskId task, TaskId on);

  [[nodiscard]] std::size_t size() const { return tasks_.size(); }

  /// Execute the whole graph; returns when every task completed.
  /// Single-shot: a TaskGraph can be run once. team_size <= 1 (or a
  /// nested-pool caller) runs serially in deterministic topological
  /// order; larger teams run on ThreadPool::global().run_team with work
  /// stealing. Throws std::logic_error on a dependency cycle.
  void run(unsigned team_size);

 private:
  struct Task {
    std::function<void()> fn;
    std::vector<TaskId> dependents;
    std::uint32_t num_deps = 0;
  };

  std::vector<Task> tasks_;
  bool ran_ = false;
};

/// Outcome of BoundedChannel::pop_until_closed — the drain-aware timed
/// pop a long-lived consumer (e.g. a serve worker multiplexing several
/// admission queues) needs to tell "no work right now" (kTimedOut,
/// keep serving other queues) apart from "closed and fully drained"
/// (kClosed, exit for good). A plain pop() cannot make the distinction
/// without blocking forever on an empty-but-open channel.
enum class ChannelPopStatus { kItem, kTimedOut, kClosed };

/// Bounded multi-producer ring channel (mutex + condition variables).
/// push() blocks while full — backpressure; try_push()/try_pop() never
/// block, which is what a task scheduled on a finite pool must use (a
/// task that blocks on channel state occupies its executor, and a full
/// complement of blocked tasks deadlocks the pool — see
/// docs/ARCHITECTURE.md, "Task-graph scheduler"). close() wakes all
/// waiters; pop() returns nullopt once the channel is closed and empty,
/// and pop_until_closed() bounds the wait so multiplexing consumers can
/// drain several channels without parking on one.
template <typename T>
class BoundedChannel {
 public:
  explicit BoundedChannel(std::size_t capacity)
      : capacity_(capacity > 0 ? capacity : 1), buf_(capacity_) {}

  /// False when full or closed; never blocks.
  bool try_push(const T& v) EBV_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (closed_ || size_ == capacity_) return false;
    buf_[(head_ + size_) % capacity_] = v;
    ++size_;
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while full; false when the channel is (or becomes) closed.
  bool push(const T& v) EBV_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (!closed_ && size_ == capacity_) not_full_.wait(mu_);
    if (closed_) return false;
    buf_[(head_ + size_) % capacity_] = v;
    ++size_;
    not_empty_.notify_one();
    return true;
  }

  /// False when empty; never blocks.
  bool try_pop(T& out) EBV_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (size_ == 0) return false;
    out = buf_[head_];
    head_ = (head_ + 1) % capacity_;
    --size_;
    not_full_.notify_one();
    return true;
  }

  /// Blocks until an item arrives; nullopt once closed and drained.
  std::optional<T> pop() EBV_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (size_ == 0 && !closed_) not_empty_.wait(mu_);
    if (size_ == 0) return std::nullopt;
    T out = buf_[head_];
    head_ = (head_ + 1) % capacity_;
    --size_;
    not_full_.notify_one();
    return out;
  }

  /// Timed, drain-aware pop: kItem when an element arrived within
  /// `timeout` (written to `out`), kTimedOut when the channel is still
  /// open but stayed empty, kClosed only once the channel is closed AND
  /// drained — items pushed before close() are still delivered, so a
  /// consumer looping until kClosed never drops accepted work. A close()
  /// wakes every waiter immediately; the timeout is an upper bound, not
  /// a poll interval.
  ChannelPopStatus pop_until_closed(T& out, std::chrono::milliseconds timeout)
      EBV_EXCLUDES(mu_) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    MutexLock lock(mu_);
    while (size_ == 0 && !closed_) {
      if (not_empty_.wait_until(mu_, deadline) == std::cv_status::timeout) {
        if (size_ == 0 && !closed_) return ChannelPopStatus::kTimedOut;
        break;
      }
    }
    if (size_ == 0) return ChannelPopStatus::kClosed;
    out = buf_[head_];
    head_ = (head_ + 1) % capacity_;
    --size_;
    not_full_.notify_one();
    return ChannelPopStatus::kItem;
  }

  void close() EBV_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Fixed at construction, so no lock is needed (and none taken).
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const EBV_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return size_;
  }
  [[nodiscard]] bool closed() const EBV_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return closed_;
  }

 private:
  mutable Mutex mu_;
  CondVar not_empty_;
  CondVar not_full_;
  const std::size_t capacity_;
  std::vector<T> buf_ EBV_GUARDED_BY(mu_);
  std::size_t head_ EBV_GUARDED_BY(mu_) = 0;
  std::size_t size_ EBV_GUARDED_BY(mu_) = 0;
  bool closed_ EBV_GUARDED_BY(mu_) = false;
};

}  // namespace ebv
