// Collision-safe suffixes for temp files that may share a directory.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#if defined(_WIN32)
#include <process.h>
#else
#include <unistd.h>
#endif

namespace ebv {

/// "<pid>-<n>": distinct across concurrently live processes (pid) and
/// across calls within one process (atomic counter), so two invocations
/// spilling into the same directory can never clobber each other's
/// temp files. Purely a naming aid — outputs stay deterministic because
/// temp-file NAMES never influence file CONTENTS.
inline std::string process_unique_suffix() {
  static std::atomic<std::uint64_t> counter{0};
#if defined(_WIN32)
  const long pid = _getpid();
#else
  const long pid = static_cast<long>(::getpid());
#endif
  return std::to_string(pid) + "-" +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace ebv
