#include "common/format.h"

#include <cmath>
#include <cstdio>

namespace ebv {

std::string with_commas(std::uint64_t value) {
  std::string raw = std::to_string(value);
  std::string out;
  out.reserve(raw.size() + raw.size() / 3);
  int count = 0;
  for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return {out.rbegin(), out.rend()};
}

std::string format_fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

std::string format_sci(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", digits, value);
  return buf;
}

std::string format_duration(double seconds) {
  if (seconds < 1e-3) return format_fixed(seconds * 1e6, 1) + " us";
  if (seconds < 1.0) return format_fixed(seconds * 1e3, 1) + " ms";
  return format_fixed(seconds, 2) + " s";
}

}  // namespace ebv
