#include "common/rng.h"

#include "common/assert.h"

namespace ebv {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream) {
  return mix64(seed ^ mix64(stream + 0x5851f42d4c957f2dULL));
}

std::uint64_t bounded(Rng& rng, std::uint64_t bound) {
  EBV_ASSERT(bound > 0);
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = rng();
    if (r >= threshold) return r % bound;
  }
}

}  // namespace ebv
