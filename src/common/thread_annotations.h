// Clang thread-safety ("capability") analysis macros — the compile-time
// half of the locking discipline documented in docs/ARCHITECTURE.md and
// docs/STATIC_ANALYSIS.md.
//
// Every mutex-guarded member in the tree carries an EBV_GUARDED_BY
// contract and every lock-assuming helper an EBV_REQUIRES one; a Clang
// build with -Wthread-safety (wired as -Werror=thread-safety by the
// static-analysis CI job and by default for Clang configures) then
// rejects any access that does not provably hold the right lock. On
// compilers without the attributes (GCC, MSVC) the macros compile away
// to nothing, so the annotations cost non-Clang builds exactly zero.
//
// The macro set mirrors the documented attribute names
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) with an EBV_
// prefix. Use them only through the capability types in
// common/sync.h (ebv::Mutex / ebv::MutexLock / ebv::CondVar) — a raw
// std::mutex is not a Clang capability, so annotations naming one would
// silently not analyze; scripts/ebvlint.py's `unannotated-mutex` rule
// rejects raw std::mutex members outside sync.h for exactly that reason.
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define EBV_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define EBV_THREAD_ANNOTATION__(x)  // compiles away on non-Clang
#endif

/// Declares a type to be a capability ("mutex" in every diagnostic).
#define EBV_CAPABILITY(x) EBV_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII type whose lifetime acquires/releases a capability.
#define EBV_SCOPED_CAPABILITY EBV_THREAD_ANNOTATION__(scoped_lockable)

/// Data member readable/writable only while holding the named mutex(es).
#define EBV_GUARDED_BY(x) EBV_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member whose POINTEE is protected by the named mutex(es).
#define EBV_PT_GUARDED_BY(x) EBV_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function that may only be called while holding the named mutex(es) —
/// the annotation for lock-assuming internal helpers split out of public
/// entry points.
#define EBV_REQUIRES(...) \
  EBV_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Function that acquires the named mutex(es) and returns holding them.
#define EBV_ACQUIRE(...) \
  EBV_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function that releases the named mutex(es).
#define EBV_RELEASE(...) \
  EBV_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function that acquires the mutex(es) only when it returns `ret`.
#define EBV_TRY_ACQUIRE(ret, ...) \
  EBV_THREAD_ANNOTATION__(try_acquire_capability(ret, __VA_ARGS__))

/// Function that must NOT be called while holding the named mutex(es) —
/// documents (and checks) "locks internally; calling under the lock
/// would self-deadlock".
#define EBV_EXCLUDES(...) EBV_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Declares that the function returns a reference to the named mutex.
#define EBV_RETURN_CAPABILITY(x) EBV_THREAD_ANNOTATION__(lock_returned(x))

/// Lock-ordering declarations on mutex members: this mutex is always
/// acquired before (resp. after) the named one. Documents the deadlock-
/// freedom argument at the declaration site; Clang checks them under
/// -Wthread-safety-beta.
#define EBV_ACQUIRED_BEFORE(...) \
  EBV_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define EBV_ACQUIRED_AFTER(...) \
  EBV_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// Escape hatch for locking the analysis cannot express. Every use MUST
/// carry a comment naming the external ordering that substitutes for the
/// lock (e.g. the task-graph scheduler's producer-before-consumer
/// chains) — see docs/STATIC_ANALYSIS.md before adding one.
#define EBV_NO_THREAD_SAFETY_ANALYSIS \
  EBV_THREAD_ANNOTATION__(no_thread_safety_analysis)
