#include "common/timer.h"

#include <ctime>

#if defined(_WIN32)
#include <chrono>
#endif

namespace ebv {

#if defined(_WIN32)

// No clock_gettime on MSVC: fall back to std::clock (process CPU time
// per the C standard) and approximate the thread reading with it too —
// the phase-stats footer is diagnostic-only.
double process_cpu_seconds() {
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

double thread_cpu_seconds() { return process_cpu_seconds(); }

#else

namespace {

double cpu_seconds(clockid_t id) {
  timespec ts{};
  if (clock_gettime(id, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

}  // namespace

double process_cpu_seconds() {
  return cpu_seconds(CLOCK_PROCESS_CPUTIME_ID);
}

double thread_cpu_seconds() { return cpu_seconds(CLOCK_THREAD_CPUTIME_ID); }

#endif

}  // namespace ebv
