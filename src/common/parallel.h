// Shared-memory parallel execution primitives.
//
// ThreadPool is a fixed-size fork-join pool: one job runs at a time, the
// calling thread participates, and completion is a barrier. Two entry
// points cover the library's needs:
//
//   for_range(n, body)    — chunked parallel loop over [0, n); chunks are
//                           claimed dynamically, so the chunk→thread
//                           mapping is NOT deterministic. Only use it when
//                           chunk results are independent or reduced in a
//                           chunk-indexed (not thread-indexed) structure.
//   run_team(t, body)     — run body(rank, team_size) on t ranks
//                           concurrently. Ranks may synchronise with each
//                           other (e.g. via SpinBarrier); the pool
//                           guarantees all ranks execute simultaneously.
//
// Exceptions thrown by a body are captured and the first one is rethrown
// on the calling thread after the job drains. Nested use from inside a
// pool body degrades to serial inline execution instead of deadlocking.
//
// The process-wide pool (ThreadPool::global()) is created lazily, sized
// by set_global_threads() when requested before first use, else the
// EBV_THREADS environment variable, else the hardware thread count.
// Components that take an explicit thread knob (PartitionConfig::
// num_threads, bsp::RunOptions::num_threads) treat it as an exact bound
// on their fan-out; the pool only carries the ranks (run_team serves
// teams beyond the pool size with temporary threads), so the pool size
// never silently caps a knob.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <thread>

namespace ebv {

/// max(1, std::thread::hardware_concurrency()).
unsigned hardware_threads();

/// ThreadPool::set_global_threads with a diagnostic instead of a silent
/// no-op: when the request cannot be honoured (the pool is already
/// running at a different size, or num_threads is 0) a warning naming
/// both sizes is written to `warn` (default std::cerr). Front ends that
/// surface a --threads knob must use this — set_global_threads's false
/// return being dropped is how the knob silently died once. Returns
/// whether the request is honoured.
bool request_global_threads(unsigned num_threads);
bool request_global_threads(unsigned num_threads, std::ostream& warn);

/// Sense-reversing spin barrier for run_team() ranks. Spins with
/// this_thread::yield so oversubscribed hosts still make progress.
class SpinBarrier {
 public:
  explicit SpinBarrier(unsigned parties) : parties_(parties) {}

  void arrive_and_wait() {
    const std::uint64_t phase = phase_.load(std::memory_order_acquire);
    if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      count_.store(0, std::memory_order_relaxed);
      phase_.fetch_add(1, std::memory_order_release);
    } else {
      while (phase_.load(std::memory_order_acquire) == phase) {
        std::this_thread::yield();
      }
    }
  }

 private:
  unsigned parties_;
  std::atomic<unsigned> count_{0};
  std::atomic<std::uint64_t> phase_{0};
};

class ThreadPool {
 public:
  /// num_threads == 0 picks hardware_threads(). The pool spawns
  /// num_threads - 1 workers; the caller is always the extra thread.
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total executors (workers + calling thread). Lock-free by design:
  /// num_workers_ is written once in the constructor and const
  /// thereafter, so concurrent readers need no synchronisation.
  [[nodiscard]] unsigned num_threads() const {
    return static_cast<unsigned>(num_workers_) + 1;
  }

  /// Chunked parallel loop: body(begin, end) over disjoint chunks covering
  /// [0, n). grain == 0 picks ~4 chunks per executor. Blocks until every
  /// chunk completed; rethrows the first body exception.
  void for_range(std::size_t n,
                 const std::function<void(std::size_t, std::size_t)>& body,
                 std::size_t grain = 0);

  /// Run body(rank, team) for rank in [0, team_size) concurrently. All
  /// ranks are guaranteed to be live at once, so bodies may use a
  /// SpinBarrier(team) to synchronise. Ranks beyond the pool size are
  /// carried by temporary threads, so any team size works on any host
  /// (oversubscription spins via yield). From inside a pool body the team
  /// degrades to 1 — check inside_pool_body() when sizing barriers.
  void run_team(unsigned team_size,
                const std::function<void(unsigned, unsigned)>& body);

  /// Process-wide pool (EBV_THREADS env or hardware_concurrency).
  static ThreadPool& global();

  /// Explicitly size the process-wide pool (overrides EBV_THREADS and the
  /// hardware default). The pool is created lazily, so this only takes
  /// effect when called before the first global() use — e.g. by a CLI
  /// front end right after parsing --threads. Returns true when the
  /// request will be (or already is) honoured; false when the pool is
  /// already running at a different size. num_threads == 0 is rejected.
  static bool set_global_threads(unsigned num_threads);

  /// True while the calling thread executes a pool body. run_team() from
  /// such a thread degrades to a team of one; callers that size external
  /// synchronisation (e.g. a SpinBarrier) to the team must check this.
  static bool inside_pool_body();

 private:
  struct Job;
  void worker_loop();
  void execute(Job& job);
  void run_job(Job& job);

  std::size_t num_workers_ = 0;
  struct Impl;
  Impl* impl_;
};

/// parallel_for(n, f): f(i) for every i in [0, n) on the global pool.
template <typename Body>
void parallel_for(std::size_t n, Body&& body, std::size_t grain = 0) {
  ThreadPool::global().for_range(
      n,
      [&body](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) body(i);
      },
      grain);
}

/// parallel_for_chunks(n, f): f(begin, end) over disjoint chunks of [0, n)
/// on the global pool — for bodies with per-chunk setup cost.
template <typename Body>
void parallel_for_chunks(std::size_t n, Body&& body, std::size_t grain = 0) {
  ThreadPool::global().for_range(n, body, grain);
}

}  // namespace ebv
