// Breadth-First Search hop counts (extension app, not in the paper's
// evaluation): SSSP over unit weights, but traversing the symmetrised
// adjacency so it reaches the whole weakly-connected component.
#pragma once

#include <limits>

#include "bsp/runtime.h"

namespace ebv::apps {

class Bfs final : public bsp::SubgraphProgram {
 public:
  static constexpr bsp::Value kUnreached =
      std::numeric_limits<bsp::Value>::infinity();

  explicit Bfs(VertexId source) : source_(source) {}

  [[nodiscard]] std::string name() const override { return "bfs"; }

  [[nodiscard]] bsp::Value init_value(VertexId global) const override {
    return global == source_ ? 0.0 : kUnreached;
  }
  [[nodiscard]] bsp::Value combine(bsp::Value a, bsp::Value b) const override {
    return a < b ? a : b;
  }
  void compute(bsp::WorkerContext& ctx, std::uint32_t superstep) const override;

 private:
  VertexId source_;
};

}  // namespace ebv::apps
