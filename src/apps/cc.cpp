#include "apps/cc.h"

#include <any>
#include <numeric>
#include <vector>

namespace ebv::apps {
namespace {

/// Per-worker persistent state: the local connected components, computed
/// once (the subgraph never changes), plus the current minimum label of
/// each local component. Replica sync then only needs to merge labels at
/// component granularity — the "think like a graph" optimisation.
struct CcState {
  std::vector<VertexId> comp_of;              // local vertex -> component
  std::vector<std::vector<VertexId>> members; // component -> local vertices
  std::vector<bsp::Value> comp_label;         // component -> current label
};

CcState build_state(bsp::WorkerContext& ctx) {
  const bsp::LocalSubgraph& ls = ctx.local();
  const VertexId n = ls.num_vertices();

  // Union-find over the local edges.
  std::vector<VertexId> parent(n);
  std::iota(parent.begin(), parent.end(), VertexId{0});
  auto find = [&](VertexId v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  for (const Edge& e : ls.edges) {
    const VertexId ra = find(e.src);
    const VertexId rb = find(e.dst);
    if (ra != rb) parent[ra < rb ? rb : ra] = ra < rb ? ra : rb;
  }
  ctx.add_work(ls.num_edges() + n);

  CcState state;
  state.comp_of.resize(n);
  std::vector<VertexId> comp_index(n, kInvalidVertex);
  for (VertexId v = 0; v < n; ++v) {
    const VertexId root = find(v);
    if (comp_index[root] == kInvalidVertex) {
      comp_index[root] = static_cast<VertexId>(state.members.size());
      state.members.emplace_back();
    }
    state.comp_of[v] = comp_index[root];
    state.members[comp_index[root]].push_back(v);
  }

  // Initial label of each component: the minimum init value (global id)
  // over its members.
  state.comp_label.resize(state.members.size());
  for (std::size_t c = 0; c < state.members.size(); ++c) {
    bsp::Value label = ctx.value(state.members[c].front());
    for (const VertexId v : state.members[c]) {
      label = std::min(label, ctx.value(v));
    }
    state.comp_label[c] = label;
  }
  return state;
}

}  // namespace

void ConnectedComponents::restore_state(bsp::WorkerContext& ctx,
                                        std::uint32_t /*next_superstep*/)
    const {
  // build_state over the RESTORED values gives comp_label[c] = min over
  // members, which the next compute()'s frontier fold makes equal to the
  // uninterrupted run's evolved label before any install/emit decision:
  // members outside the restored frontier still hold the label installed
  // at the cut, and sync only lowered frontier members below it. The
  // context is a throwaway, so add_work() inside the rebuild never
  // reaches the virtual-time accounting.
  ctx.state() = build_state(ctx);
}

void ConnectedComponents::compute(bsp::WorkerContext& ctx,
                                  std::uint32_t superstep) const {
  const bsp::LocalSubgraph& ls = ctx.local();

  if (superstep == 0) {
    ctx.state() = build_state(ctx);
  }
  CcState& state = *std::any_cast<CcState>(&ctx.state());

  // Fold frontier labels into component labels.
  if (superstep == 0) {
    // All components are fresh; every member needs its label installed.
  } else {
    for (const VertexId v : ctx.updated()) {
      const VertexId c = state.comp_of[v];
      if (ctx.value(v) < state.comp_label[c]) {
        state.comp_label[c] = ctx.value(v);
      }
      ctx.add_work(1);
    }
  }

  // Install component labels on members that still disagree, emitting
  // changed replicated vertices.
  for (std::size_t c = 0; c < state.members.size(); ++c) {
    const bsp::Value label = state.comp_label[c];
    // Skip components that cannot have stale members: on superstep 0 all
    // must be visited; afterwards only components touched above. A cheap
    // over-approximation — visit all — would be quadratic across
    // supersteps, so track via a dirty scan only when updated() is small.
    if (superstep != 0) {
      bool dirty = false;
      for (const VertexId v : state.members[c]) {
        if (ctx.value(v) != label) {
          dirty = true;
          break;
        }
      }
      if (!dirty) continue;
    }
    for (const VertexId v : state.members[c]) {
      ctx.add_work(1);
      if (ctx.value(v) != label) {
        ctx.set_value(v, label);
        // Unchanged replicas hold their init value (their own id), which
        // is identical on every replica — only changes need publishing.
        if (ls.is_replicated[v] != 0) ctx.emit(v, label);
      }
    }
  }
}

}  // namespace ebv::apps
