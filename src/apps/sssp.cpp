#include "apps/sssp.h"

#include <queue>
#include <utility>
#include <vector>

namespace ebv::apps {

void Sssp::compute(bsp::WorkerContext& ctx, std::uint32_t superstep) const {
  const bsp::LocalSubgraph& ls = ctx.local();

  // Min-heap of (distance, local vertex); lazy deletion.
  using Item = std::pair<bsp::Value, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;

  if (superstep == 0) {
    const VertexId src = ls.local_of(source_);
    if (src != kInvalidVertex) heap.push({ctx.value(src), src});
  } else {
    for (const VertexId v : ctx.updated()) heap.push({ctx.value(v), v});
  }

  std::vector<std::uint8_t> changed(ls.num_vertices(), 0);
  std::uint64_t work = 0;
  while (!heap.empty()) {
    const auto [dist, v] = heap.top();
    heap.pop();
    ++work;
    if (dist > ctx.value(v)) continue;  // stale entry
    const auto neighbors = ls.out_csr.neighbors(v);
    const auto edge_ids = ls.out_csr.edge_ids(v);
    for (std::size_t k = 0; k < neighbors.size(); ++k) {
      ++work;
      const VertexId w = neighbors[k];
      const bsp::Value candidate = dist + ls.weight(edge_ids[k]);
      if (candidate < ctx.value(w)) {
        ctx.set_value(w, candidate);
        changed[w] = 1;
        heap.push({candidate, w});
      }
    }
  }
  ctx.add_work(work);

  for (VertexId v = 0; v < ls.num_vertices(); ++v) {
    if (changed[v] != 0 && ls.is_replicated[v] != 0) {
      ctx.emit(v, ctx.value(v));
    }
  }
}

}  // namespace ebv::apps
