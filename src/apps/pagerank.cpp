#include "apps/pagerank.h"

#include <vector>

namespace ebv::apps {

void PageRank::compute(bsp::WorkerContext& ctx,
                       std::uint32_t /*superstep*/) const {
  const bsp::LocalSubgraph& ls = ctx.local();
  const VertexId n = ls.num_vertices();

  // Partial in-sums over local edges.
  std::vector<bsp::Value> partial(n, 0.0);
  std::vector<std::uint8_t> has_partial(n, 0);
  std::uint64_t work = 0;
  for (const Edge& e : ls.edges) {
    ++work;
    const std::uint32_t outdeg = ls.global_out_degree[e.src];
    if (outdeg == 0) continue;
    partial[e.dst] += ctx.value(e.src) / static_cast<double>(outdeg);
    has_partial[e.dst] = 1;
  }
  ctx.add_work(work + n);

  // Masters always emit (a zero partial still triggers the teleport-only
  // update); mirrors emit only real partial mass.
  for (VertexId v = 0; v < n; ++v) {
    if (ls.is_master[v] != 0 || ls.is_replicated[v] == 0) {
      ctx.emit(v, partial[v]);
    } else if (has_partial[v] != 0) {
      ctx.emit(v, partial[v]);
    }
  }
}

}  // namespace ebv::apps
