// Connected Components (weakly connected, undirected semantics) as a
// subgraph-centric program: minimum-label propagation run to *local*
// convergence inside every superstep — the "think like a graph" pattern
// that lets subgraph-centric frameworks converge in few supersteps.
#pragma once

#include "bsp/runtime.h"

namespace ebv::apps {

class ConnectedComponents final : public bsp::SubgraphProgram {
 public:
  [[nodiscard]] std::string name() const override { return "cc"; }

  [[nodiscard]] bsp::Value init_value(VertexId global) const override {
    return static_cast<bsp::Value>(global);
  }
  [[nodiscard]] bsp::Value combine(bsp::Value a, bsp::Value b) const override {
    return a < b ? a : b;
  }
  void compute(bsp::WorkerContext& ctx, std::uint32_t superstep) const override;

  /// Checkpoint-resume hook: the union-find scratch is derivable from the
  /// subgraph + restored values, so it is rebuilt rather than serialised.
  void restore_state(bsp::WorkerContext& ctx,
                     std::uint32_t next_superstep) const override;
};

}  // namespace ebv::apps
