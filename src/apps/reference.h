// Sequential single-machine reference implementations. These are the
// ground truth the integration tests compare the BSP programs against.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace ebv::apps {

/// Weakly-connected component labels (min vertex id per component),
/// computed with union-find.
std::vector<VertexId> cc_reference(const Graph& graph);

/// Dijkstra distances from `source` over out-edges (unit weights when the
/// graph is unweighted). Unreachable vertices get +infinity.
std::vector<double> sssp_reference(const Graph& graph, VertexId source);

/// Power-iteration PageRank with the same formula as apps::PageRank
/// (teleport (1-d)/N, no dangling redistribution), `iterations` rounds.
std::vector<double> pagerank_reference(const Graph& graph,
                                       std::uint32_t iterations,
                                       double damping = 0.85);

/// BFS hop counts over the symmetrised adjacency.
std::vector<double> bfs_reference(const Graph& graph, VertexId source);

}  // namespace ebv::apps
