#include "apps/bfs.h"

#include <queue>
#include <vector>

namespace ebv::apps {

void Bfs::compute(bsp::WorkerContext& ctx, std::uint32_t superstep) const {
  const bsp::LocalSubgraph& ls = ctx.local();

  std::queue<VertexId> frontier;
  if (superstep == 0) {
    const VertexId src = ls.local_of(source_);
    if (src != kInvalidVertex) frontier.push(src);
  } else {
    for (const VertexId v : ctx.updated()) frontier.push(v);
  }

  std::vector<std::uint8_t> changed(ls.num_vertices(), 0);
  std::vector<std::uint8_t> queued(ls.num_vertices(), 0);
  std::uint64_t work = 0;
  while (!frontier.empty()) {
    const VertexId v = frontier.front();
    frontier.pop();
    queued[v] = 0;
    const bsp::Value next_hop = ctx.value(v) + 1.0;
    for (const VertexId w : ls.both_csr.neighbors(v)) {
      ++work;
      if (next_hop < ctx.value(w)) {
        ctx.set_value(w, next_hop);
        changed[w] = 1;
        if (queued[w] == 0) {
          queued[w] = 1;
          frontier.push(w);
        }
      }
    }
  }
  ctx.add_work(work);

  for (VertexId v = 0; v < ls.num_vertices(); ++v) {
    if (changed[v] != 0 && ls.is_replicated[v] != 0) {
      ctx.emit(v, ctx.value(v));
    }
  }
}

}  // namespace ebv::apps
