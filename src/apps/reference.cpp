#include "apps/reference.h"

#include <limits>
#include <numeric>
#include <queue>

#include "graph/csr.h"

namespace ebv::apps {
namespace {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), VertexId{0});
  }
  VertexId find(VertexId v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }
  void unite(VertexId a, VertexId b) {
    const VertexId ra = find(a);
    const VertexId rb = find(b);
    if (ra == rb) return;
    // Union by min id so roots are the component minima.
    if (ra < rb) {
      parent_[rb] = ra;
    } else {
      parent_[ra] = rb;
    }
  }

 private:
  std::vector<VertexId> parent_;
};

}  // namespace

std::vector<VertexId> cc_reference(const Graph& graph) {
  UnionFind uf(graph.num_vertices());
  for (const Edge& e : graph.edges()) uf.unite(e.src, e.dst);
  std::vector<VertexId> labels(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) labels[v] = uf.find(v);
  return labels;
}

std::vector<double> sssp_reference(const Graph& graph, VertexId source) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(graph.num_vertices(), kInf);
  if (source >= graph.num_vertices()) return dist;
  const CsrGraph out = CsrGraph::build(graph, CsrGraph::Direction::kOut);

  using Item = std::pair<double, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[source] = 0.0;
  heap.push({0.0, source});
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[v]) continue;
    const auto neighbors = out.neighbors(v);
    const auto edge_ids = out.edge_ids(v);
    for (std::size_t k = 0; k < neighbors.size(); ++k) {
      const double candidate = d + graph.weight(edge_ids[k]);
      if (candidate < dist[neighbors[k]]) {
        dist[neighbors[k]] = candidate;
        heap.push({candidate, neighbors[k]});
      }
    }
  }
  return dist;
}

std::vector<double> pagerank_reference(const Graph& graph,
                                       std::uint32_t iterations,
                                       double damping) {
  const VertexId n = graph.num_vertices();
  std::vector<double> rank(n, n == 0 ? 0.0 : 1.0 / n);
  std::vector<double> next(n, 0.0);
  for (std::uint32_t it = 0; it < iterations; ++it) {
    std::fill(next.begin(), next.end(), (1.0 - damping) / n);
    for (const Edge& e : graph.edges()) {
      next[e.dst] += damping * rank[e.src] / graph.out_degree(e.src);
    }
    rank.swap(next);
  }
  return rank;
}

std::vector<double> bfs_reference(const Graph& graph, VertexId source) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> hops(graph.num_vertices(), kInf);
  if (source >= graph.num_vertices()) return hops;
  const CsrGraph both = CsrGraph::build(graph, CsrGraph::Direction::kBoth);
  std::queue<VertexId> q;
  hops[source] = 0.0;
  q.push(source);
  while (!q.empty()) {
    const VertexId v = q.front();
    q.pop();
    for (const VertexId w : both.neighbors(v)) {
      if (hops[w] == kInf) {
        hops[w] = hops[v] + 1.0;
        q.push(w);
      }
    }
  }
  return hops;
}

}  // namespace ebv::apps
