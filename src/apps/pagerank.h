// PageRank on the vertex-cut BSP runtime. Each superstep is one power
// iteration: every worker accumulates the partial sums Σ rank(u)/outdeg(u)
// over its local in-edges, the replica sync adds partials across workers
// (combine = +), and the master applies teleport + damping before
// broadcasting the new rank to mirrors.
//
// Known deviation from textbook PageRank — dangling mass is DROPPED, not
// redistributed: a source with out-degree 0 contributes nothing to any
// partial sum (pagerank.cpp skips it), so on graphs with sinks Σ rank
// shrinks below 1 by d·(sink mass) per iteration instead of that mass
// being spread uniformly. This matches pagerank_reference (both sides of
// every apps test drop the same mass), matches Pregel-style "no outgoing
// messages" semantics, and preserves the relative ranking on the graphs
// the paper evaluates. Pinned by apps_test
// (PageRankSinkGraphPinsDanglingMassLoss); revisit there before changing
// the semantics.
#pragma once

#include "bsp/runtime.h"

namespace ebv::apps {

class PageRank final : public bsp::SubgraphProgram {
 public:
  PageRank(VertexId num_vertices, std::uint32_t iterations = 20,
           double damping = 0.85)
      : num_vertices_(num_vertices),
        iterations_(iterations),
        damping_(damping) {}

  [[nodiscard]] std::string name() const override { return "pagerank"; }

  [[nodiscard]] bsp::Value init_value(VertexId /*global*/) const override {
    return 1.0 / static_cast<double>(num_vertices_);
  }
  [[nodiscard]] bsp::Value combine(bsp::Value a, bsp::Value b) const override {
    return a + b;
  }
  [[nodiscard]] bool combine_with_current() const override { return false; }
  [[nodiscard]] bsp::Value apply(VertexId /*global*/,
                                 bsp::Value combined) const override {
    return (1.0 - damping_) / static_cast<double>(num_vertices_) +
           damping_ * combined;
  }
  [[nodiscard]] std::optional<std::uint32_t> fixed_supersteps()
      const override {
    return iterations_;
  }
  void compute(bsp::WorkerContext& ctx, std::uint32_t superstep) const override;

  [[nodiscard]] double damping() const { return damping_; }
  [[nodiscard]] std::uint32_t iterations() const { return iterations_; }

 private:
  VertexId num_vertices_;
  std::uint32_t iterations_;
  double damping_;
};

}  // namespace ebv::apps
