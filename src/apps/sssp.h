// Single-Source Shortest Paths: local Dijkstra to local convergence per
// superstep; replica sync exchanges distance improvements (min-combine),
// making the global computation label-correcting across supersteps.
#pragma once

#include <limits>

#include "bsp/runtime.h"

namespace ebv::apps {

class Sssp final : public bsp::SubgraphProgram {
 public:
  static constexpr bsp::Value kInfinity =
      std::numeric_limits<bsp::Value>::infinity();

  explicit Sssp(VertexId source) : source_(source) {}

  [[nodiscard]] std::string name() const override { return "sssp"; }

  [[nodiscard]] bsp::Value init_value(VertexId global) const override {
    return global == source_ ? 0.0 : kInfinity;
  }
  [[nodiscard]] bsp::Value combine(bsp::Value a, bsp::Value b) const override {
    return a < b ? a : b;
  }
  void compute(bsp::WorkerContext& ctx, std::uint32_t superstep) const override;

 private:
  VertexId source_;
};

}  // namespace ebv::apps
